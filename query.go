package repro

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	rtrace "runtime/trace"
	"time"

	"repro/internal/formula"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/plan"
)

// BuildError is the uniform error type every fluent-builder validation
// failure surfaces as: which builder call went wrong and why. Build
// joins every recorded failure, so errors.As(err, new(*BuildError))
// recovers the first and errors.Join unpacking recovers all.
type BuildError struct {
	// Op names the builder call that failed ("Query", "Join", "TopK", …).
	Op string
	// Reason says what was wrong.
	Reason string
}

func (e *BuildError) Error() string { return "repro: " + e.Op + ": " + e.Reason }

// Query is the fluent query builder: a chain of relational operators
// compiled to the plan IR at Build, validated as it is written.
// Builder methods record failures instead of panicking, so a chain can
// always be written straight through; Build (or the first Run) reports
// everything that went wrong as BuildErrors. A Query is single-use
// scaffolding and not safe for concurrent mutation; the Prepared plan
// it builds is immutable and safe to Run concurrently.
type Query struct {
	sess    *Session
	node    plan.Node
	errs    []error
	grouped bool
	ranked  bool
}

// Query starts a fluent query over a source: a registered relation
// name, a registered *pdb.Relation, or a plan.Node subtree (the escape
// hatch for pre-built IR such as the TPC-H catalog — its scans must
// still be registered relations). Source errors, like every builder
// error, surface at Build.
func (s *Session) Query(source any) *Query {
	q := &Query{sess: s}
	switch src := source.(type) {
	case string:
		rel, ok := s.db.Relation(src)
		if !ok {
			return q.fail("Query", "relation %q is not registered with the DB", src)
		}
		q.node = &plan.Scan{Rel: rel}
	case *pdb.Relation:
		if src == nil {
			return q.fail("Query", "nil relation")
		}
		if !s.db.known(src) {
			return q.fail("Query", "relation %q is not registered with the DB", src.Name)
		}
		q.node = &plan.Scan{Rel: src}
	case plan.Node:
		if src == nil {
			return q.fail("Query", "nil plan node")
		}
		q.adoptNode(src)
	case nil:
		return q.fail("Query", "nil source")
	default:
		return q.fail("Query", "unsupported source %T (want a relation name, *pdb.Relation, or plan.Node)", source)
	}
	return q
}

// adoptNode takes over a pre-built IR subtree: record its shape flags
// and validate its scans and ranking placement like the fluent methods
// would have. The accepted shapes mirror plan.Compile's: an optional
// TopK/Threshold root, an optional GroupLineage directly underneath,
// and a rank- and group-free operator tree below that.
func (q *Query) adoptNode(n plan.Node) {
	q.node = n
	switch t := n.(type) {
	case *plan.TopK:
		q.ranked, q.grouped = true, true
		q.checkGrouped(t.Input)
	case *plan.Threshold:
		q.ranked, q.grouped = true, true
		q.checkGrouped(t.Input)
	case *plan.GroupLineage:
		q.grouped = true
		q.checkNode(t.Input)
	default:
		q.checkNode(n)
	}
}

// checkGrouped validates the input of an adopted ranking root, which
// may be the canonical GroupLineage (the shape plan.Compile routes) or
// a bare operator tree.
func (q *Query) checkGrouped(n plan.Node) {
	if g, ok := n.(*plan.GroupLineage); ok {
		q.checkNode(g.Input)
		return
	}
	q.checkNode(n)
}

// checkNode walks an adopted operator tree: every scan must read a
// registered relation, and no ranking or grouping node may appear —
// the root-level ones were already stripped by adoptNode, so any
// survivor here is nested.
func (q *Query) checkNode(n plan.Node) {
	switch t := n.(type) {
	case nil:
	case *plan.Scan:
		if !q.sess.db.known(t.Rel) {
			name := "<nil>"
			if t.Rel != nil {
				name = t.Rel.Name
			}
			q.fail("Query", "plan scans relation %q, which is not registered with the DB", name)
		}
	case *plan.Select:
		q.checkNode(t.Input)
	case *plan.EquiJoin:
		q.checkNode(t.Left)
		q.checkNode(t.Right)
	case *plan.ThetaJoin:
		if t.Less == nil && t.Pred == nil {
			q.fail("Query", "ThetaJoin has neither Less nor Pred — an adopted theta join must carry its condition")
		}
		q.checkNode(t.Left)
		q.checkNode(t.Right)
	case *plan.Project:
		q.checkNode(t.Input)
	case *plan.GroupLineage:
		q.fail("Query", "GroupLineage below the query root")
	case *plan.TopK:
		q.fail("Query", "TopK below the query root — ranking must be the outermost operator")
	case *plan.Threshold:
		q.fail("Query", "Threshold below the query root — ranking must be the outermost operator")
	default:
		q.fail("Query", "unknown plan node %T", n)
	}
}

// fail records a BuildError and keeps the chain usable.
func (q *Query) fail(op, format string, args ...any) *Query {
	q.errs = append(q.errs, &BuildError{Op: op, Reason: fmt.Sprintf(format, args...)})
	return q
}

// open reports whether more relational operators may be appended,
// recording the violation otherwise: nothing follows a ranking root,
// and only TopK/Threshold follow GroupLineage.
func (q *Query) open(op string) bool {
	switch {
	case q.ranked:
		q.fail(op, "no operator may follow TopK/Threshold — ranking must be the outermost operator")
		return false
	case q.grouped:
		q.fail(op, "only TopK or Threshold may follow GroupLineage")
		return false
	}
	return true
}

// checkCol validates a column position against the current schema width
// (skipped while the chain is already broken, to avoid cascading noise).
func (q *Query) checkCol(op string, col, width int, what string) bool {
	if col < 0 || col >= width {
		q.fail(op, "%s column %d out of range [0, %d)", what, col, width)
		return false
	}
	return true
}

// Select keeps the tuples satisfying pred. Directly over a scan it is a
// leaf filter the structural routes accept; anywhere else it forces the
// lineage route (see plan.Select).
func (q *Query) Select(pred func(vals []pdb.Value) bool) *Query {
	if !q.open("Select") {
		return q
	}
	if pred == nil {
		return q.fail("Select", "nil predicate")
	}
	if q.node != nil {
		q.node = &plan.Select{Input: q.node, Pred: pred}
	}
	return q
}

// Join equi-joins with another query of the same session on
// this[leftCol] = other[rightCol]; the output schema is this query's
// columns then the other's.
func (q *Query) Join(other *Query, leftCol, rightCol int) *Query {
	l, r, ok := q.joinOperands("Join", other)
	if !ok {
		return q
	}
	if q.checkCol("Join", leftCol, plan.Width(l), "left") &&
		q.checkCol("Join", rightCol, plan.Width(r), "right") {
		q.node = &plan.EquiJoin{Left: l, Right: r, LeftCol: leftCol, RightCol: rightCol}
	}
	return q
}

// JoinLess joins with another query on this[leftCol] < other[rightCol]
// — the structured inequality the IQ sorted-scan route recognizes.
func (q *Query) JoinLess(other *Query, leftCol, rightCol int) *Query {
	l, r, ok := q.joinOperands("JoinLess", other)
	if !ok {
		return q
	}
	if q.checkCol("JoinLess", leftCol, plan.Width(l), "left") &&
		q.checkCol("JoinLess", rightCol, plan.Width(r), "right") {
		q.node = &plan.ThetaJoin{Left: l, Right: r, Less: &plan.Less{LeftCol: leftCol, RightCol: rightCol}}
	}
	return q
}

// JoinPred joins with another query on an opaque predicate over the two
// sides' tuples; it always forces the lineage route.
func (q *Query) JoinPred(other *Query, pred func(left, right []pdb.Value) bool) *Query {
	l, r, ok := q.joinOperands("JoinPred", other)
	if !ok {
		return q
	}
	if pred == nil {
		return q.fail("JoinPred", "nil predicate")
	}
	q.node = &plan.ThetaJoin{Left: l, Right: r, Pred: pred}
	return q
}

// joinOperands validates the two sides of a join and absorbs the other
// chain's recorded errors, so a broken operand surfaces at this chain's
// Build too.
func (q *Query) joinOperands(op string, other *Query) (l, r plan.Node, ok bool) {
	if !q.open(op) {
		return nil, nil, false
	}
	if other == nil {
		q.fail(op, "nil query operand")
		return nil, nil, false
	}
	if other.sess != q.sess {
		q.fail(op, "operands belong to different sessions")
		return nil, nil, false
	}
	q.errs = append(q.errs, other.errs...)
	if other.ranked || other.grouped {
		q.fail(op, "cannot join a grouped or ranked query — GroupLineage/TopK/Threshold terminate a chain")
		return nil, nil, false
	}
	if q.node == nil || other.node == nil {
		return nil, nil, false
	}
	return q.node, other.node, true
}

// Project narrows the schema to the given column positions (no
// duplicate elimination — lineage is unchanged). An empty projection is
// a build error; projecting everything away is what GroupLineage with
// no columns (the Boolean query) is for.
func (q *Query) Project(cols ...int) *Query {
	if !q.open("Project") {
		return q
	}
	if len(cols) == 0 {
		return q.fail("Project", "empty projection — GroupLineage() with no columns is the Boolean query")
	}
	if q.node == nil {
		return q
	}
	w := plan.Width(q.node)
	for _, c := range cols {
		if !q.checkCol("Project", c, w, "projected") {
			return q
		}
	}
	q.node = &plan.Project{Input: q.node, Cols: append([]int(nil), cols...)}
	return q
}

// GroupLineage terminates the relational chain with the
// duplicate-eliminating projection: tuples group by the projected
// values and each group's lineage clauses become the answer's DNF. No
// columns is the Boolean query. Only TopK or Threshold may follow.
func (q *Query) GroupLineage(cols ...int) *Query {
	if !q.open("GroupLineage") {
		return q
	}
	q.grouped = true
	if q.node == nil {
		return q
	}
	w := plan.Width(q.node)
	for _, c := range cols {
		if !q.checkCol("GroupLineage", c, w, "grouped") {
			return q
		}
	}
	q.node = &plan.GroupLineage{Input: q.node, Cols: append([]int(nil), cols...)}
	return q
}

// TopK keeps the K most probable answers. It must be the last call of
// the chain; on the lineage route the answers stream out of Run as
// their top-k membership is proven.
func (q *Query) TopK(k int) *Query {
	if q.ranked {
		return q.fail("TopK", "duplicate ranking — TopK/Threshold may appear once, as the outermost operator")
	}
	q.ranked, q.grouped = true, true
	if k <= 0 {
		return q.fail("TopK", "K must be positive, got %d", k)
	}
	if q.node != nil {
		q.node = &plan.TopK{Input: q.node, K: k}
	}
	return q
}

// Threshold keeps the answers with confidence at least tau. It must be
// the last call of the chain, like TopK.
func (q *Query) Threshold(tau float64) *Query {
	if q.ranked {
		return q.fail("Threshold", "duplicate ranking — TopK/Threshold may appear once, as the outermost operator")
	}
	q.ranked, q.grouped = true, true
	if math.IsNaN(tau) || tau < 0 || tau > 1 {
		return q.fail("Threshold", "Tau must be a probability in [0, 1], got %v", tau)
	}
	if q.node != nil {
		q.node = &plan.Threshold{Input: q.node, Tau: tau}
	}
	return q
}

// Schema returns the output column names at the current point of the
// chain (nil once the chain has recorded an error).
func (q *Query) Schema() []string {
	if len(q.errs) > 0 || q.node == nil {
		return nil
	}
	return plan.Schema(q.node)
}

// Build validates the chain and compiles it through the planner. Every
// builder failure recorded so far is returned, joined; each is a
// *BuildError.
func (q *Query) Build() (*Prepared, error) {
	if len(q.errs) > 0 {
		return nil, errors.Join(q.errs...)
	}
	if q.node == nil {
		return nil, &BuildError{Op: "Build", Reason: "empty query"}
	}
	return &Prepared{p: plan.CompileWith(q.node, q.sess.planOptions()), sess: q.sess}, nil
}

// Explain builds the query and returns the planner's one-line routing
// explanation.
func (q *Query) Explain() (string, error) {
	pr, err := q.Build()
	if err != nil {
		return "", err
	}
	return pr.Explain(), nil
}

// Run builds the query and streams its answers (see Prepared.Run). A
// build failure yields no answers and the build error.
func (q *Query) Run(ctx context.Context) iter.Seq2[Answer, error] {
	pr, err := q.Build()
	if err != nil {
		return func(yield func(Answer, error) bool) { yield(Answer{}, err) }
	}
	return pr.Run(ctx)
}

// All builds the query and returns the full answer set in batch form
// (see Prepared.All). A build failure returns the build error.
func (q *Query) All(ctx context.Context) ([]Answer, error) {
	pr, err := q.Build()
	if err != nil {
		return nil, err
	}
	return pr.All(ctx)
}

// Prepared is a built, routed query: immutable, reusable, and safe for
// concurrent Runs (the underlying plan holds no per-run state).
type Prepared struct {
	p    *plan.Plan
	sess *Session
}

// Plan exposes the routed plan — the escape hatch to the internal
// surface (Route, Why, Lineage).
func (pr *Prepared) Plan() *plan.Plan { return pr.p }

// Explain returns the planner's one-line routing explanation.
func (pr *Prepared) Explain() string { return pr.p.Explain() }

// runObs is the per-execution observability bookkeeping every Prepared
// entry point (Run, All, Analyze) shares: the borrowed interner with
// its traffic baseline, the session-cache baselines for the trace's
// deltas, the wall/first-answer clock, and the runtime/trace task that
// scopes the execution's regions. begin opens it; finish records into
// the DB registry, completes the trace, and returns the interner.
type runObs struct {
	pr      *Prepared
	tr      *obs.QueryTrace
	in      *formula.Interner
	inBase  obs.CacheStats
	probB   obs.CacheStats
	fragB   obs.CacheStats
	start   time.Time
	first   time.Duration
	endTask func()
}

func (pr *Prepared) begin(ctx context.Context, tr *obs.QueryTrace) (context.Context, *runObs) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := &runObs{pr: pr, tr: tr, in: pr.sess.db.interner()}
	o.inBase = o.in.CacheStats()
	o.probB = pr.sess.cache.CacheStats()
	o.fragB = pr.sess.frags.CacheStats()
	if rtrace.IsEnabled() {
		var task *rtrace.Task
		ctx, task = rtrace.NewTask(ctx, "repro.query")
		o.endTask = task.End
	}
	o.start = time.Now()
	return ctx, o
}

// answered marks the time to first answer, once.
func (o *runObs) answered() {
	if o.first == 0 {
		o.first = time.Since(o.start)
	}
}

func (o *runObs) finish(err error) {
	wall := time.Since(o.start)
	sess := o.pr.sess
	inDelta := o.in.CacheStats().Sub(o.inBase)
	sess.db.release(o.in)
	met := sess.db.metrics
	met.RecordInterner(inDelta.Hits, inDelta.Misses)
	met.RecordQuery(wall, o.first)
	o.tr.SetCaches(
		sess.cache.CacheStats().Sub(o.probB),
		sess.frags.CacheStats().Sub(o.fragB),
		inDelta,
	)
	o.tr.Finish(wall, o.first, err)
	if o.endTask != nil {
		o.endTask()
	}
	if sess.trace != nil && o.tr != nil {
		sess.trace(o.tr)
	}
}

// traceSink returns the trace a run should populate: a fresh one when
// the session installed a WithTrace sink, nil (all builders no-op)
// otherwise.
func (pr *Prepared) traceSink() *obs.QueryTrace {
	if pr.sess.trace != nil {
		return &obs.QueryTrace{}
	}
	return nil
}

// Run executes the query with the session's evaluator and streams the
// answers. On a ranked lineage-route query the stream is anytime: each
// answer is yielded the moment its membership is proven, before
// refinement of the remaining answers finishes; exact routes yield
// their answers once computed. Breaking out of the loop cancels the
// run. A failure ends the stream with a final (zero answer, error)
// pair after the proven prefix — iterate to the end and check the
// error, or use Collect.
func (pr *Prepared) Run(ctx context.Context) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		tr := pr.traceSink()
		ctx, o := pr.begin(ctx, tr)
		var runErr error
		for a, err := range pr.p.StreamTraced(ctx, pr.sess.db.space, pr.sess.Evaluator(), o.in, tr) {
			if err != nil {
				runErr = err
			} else {
				o.answered()
			}
			if !yield(a, err) {
				break
			}
		}
		o.finish(runErr)
	}
}

// All runs the prepared query to completion and returns the full
// answer set in canonical batch order — on ranked queries most
// probable first, exactly like the internal Plan.Answers path. Run's
// stream instead delivers ranked answers in proof order; Collect(Run)
// when arrival order is what matters.
func (pr *Prepared) All(ctx context.Context) ([]Answer, error) {
	return pr.all(ctx, pr.traceSink())
}

func (pr *Prepared) all(ctx context.Context, tr *obs.QueryTrace) ([]Answer, error) {
	ctx, o := pr.begin(ctx, tr)
	out, err := pr.p.AnswersTraced(ctx, pr.sess.db.space, pr.sess.Evaluator(), o.in, tr)
	if len(out) > 0 {
		o.answered()
	}
	o.finish(err)
	return out, err
}

// Analyze executes the query to completion, discards the answers, and
// returns the execution's EXPLAIN ANALYZE trace: the routing decision,
// per-stage timings, lineage and per-partition volumes, the ranking
// scheduler's outcome with per-answer refinement steps and decision
// points, and the session caches' traffic during the run. Render it
// with Text (deterministic, no timings) or String (timed); the struct
// is the programmatic surface. The run is a real execution with the
// session's evaluator — budgets, caches and metrics apply exactly as
// in All. The returned trace is non-nil even on error, carrying
// whatever was recorded before the failure.
func (pr *Prepared) Analyze(ctx context.Context) (*QueryTrace, error) {
	tr := &obs.QueryTrace{}
	_, err := pr.all(ctx, tr)
	return tr, err
}

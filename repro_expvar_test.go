package repro_test

import (
	"context"
	"encoding/json"
	"expvar"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/pdb"
)

func expvarDemoDB(t *testing.T) *repro.DB {
	t.Helper()
	s := repro.NewSpace()
	r := pdb.NewTupleIndependent(s, "R",
		[]string{"k"}, [][]pdb.Value{{1}, {2}}, []float64{0.5, 0.5}, 1)
	return repro.NewDB(s, r)
}

// TestServeExpvarRepublish pins the restart behavior of
// DB.PublishExpvar: a service handler that rebuilds its DB and
// publishes under the same name must not panic (expvar.Publish does on
// duplicates), and the published variable must follow the latest DB.
func TestServeExpvarRepublish(t *testing.T) {
	const name = "test-repro-expvar-republish"
	db1 := expvarDemoDB(t)
	db1.PublishExpvar(name)
	db1.PublishExpvar(name) // same DB twice: idempotent

	db2 := expvarDemoDB(t)
	db2.PublishExpvar(name) // a "restarted" DB reclaims the name

	// Drive traffic through db2 only; the published var must reflect it.
	sess := db2.Session()
	if _, err := sess.Query("R").GroupLineage(0).All(context.Background()); err != nil {
		t.Fatal(err)
	}

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published value is not a metrics snapshot: %v", err)
	}
	if snap.Queries != 1 {
		t.Fatalf("published snapshot has %d queries, want 1 (rebound to db2)", snap.Queries)
	}
	if got := db1.Snapshot().Queries; got != 0 {
		t.Fatalf("db1 unexpectedly recorded %d queries", got)
	}
}

package repro_test

import (
	"context"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/pdb"
	"repro/internal/plan"
	"repro/internal/tpch"
)

// obsQ15 builds a façade DB over a deterministic TPC-H instance and
// the ranked Q15 plan IR (top-3 suppliers by confidence), forced onto
// the sharded lineage route — the acceptance workload of the
// observability layer.
func obsQ15(t testing.TB, shards int) (*repro.DB, *repro.Prepared) {
	t.Helper()
	gen := tpch.Generate(tpch.Config{SF: 0.002, ProbHigh: 1, Seed: 3})
	db := repro.NewDB(gen.Space, gen.Supplier, gen.Lineitem)
	db.Pool().Resize(1) // sequential: cache orders, hence traces, deterministic
	sess := db.Session(repro.WithEps(1e-3), repro.WithForceLineage(), repro.WithShards(shards))
	node := &plan.TopK{Input: gen.Q15IR(0, tpch.MaxDate/3), K: 3}
	pr, err := sess.Query(node).Build()
	if err != nil {
		t.Fatal(err)
	}
	return db, pr
}

// TestObsAnalyzeQ15 is the acceptance check: EXPLAIN ANALYZE on the
// ranked TPC-H Q15 reports the route, the shard fan-out, per-stage
// volumes, per-partition chain stats, per-answer decision points, and
// cache hit rates — all in one deterministic text tree.
func TestObsAnalyzeQ15(t *testing.T) {
	_, pr := obsQ15(t, 2)
	tr, err := pr.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Route != "d-tree" {
		t.Fatalf("route %q, want d-tree (forced lineage)", tr.Route)
	}
	if tr.Shards != 2 {
		t.Fatalf("shards %d, want 2", tr.Shards)
	}
	if len(tr.Partitions) != 2 {
		t.Fatalf("%d partition stats, want 2", len(tr.Partitions))
	}
	if tr.Lineage == nil || tr.Lineage.Answers == 0 || tr.Lineage.Tuples == 0 {
		t.Fatalf("lineage stats missing or empty: %+v", tr.Lineage)
	}
	if tr.Rank == nil || tr.Rank.Kind != "top-k" || tr.Rank.K != 3 {
		t.Fatalf("rank stats %+v, want top-k k=3", tr.Rank)
	}
	if tr.Rank.Steps == 0 || tr.Rank.DecidedIn == 0 {
		t.Fatalf("rank recorded no work: %+v", tr.Rank)
	}
	if tr.AnswersTotal == 0 || len(tr.Answers) == 0 {
		t.Fatalf("no answer traces (total %d)", tr.AnswersTotal)
	}
	decided := 0
	for _, a := range tr.Answers {
		if a.DecidedAtStep > 0 {
			decided++
		}
	}
	if decided == 0 {
		t.Fatal("no answer carries a DecidedAtStep")
	}
	if tr.Wall <= 0 {
		t.Fatalf("wall %v, want positive", tr.Wall)
	}
	text := tr.Text()
	for _, want := range []string{
		"EXPLAIN ANALYZE route=d-tree shards=2",
		"stage lineage:",
		"partition 0:",
		"partition 1:",
		"stage rank:",
		"top-k k=3",
		"decided@",
		"caches: prob ",
		"| frag ",
		"| intern ",
		"total: answers=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace text missing %q:\n%s", want, text)
		}
	}
	// The timed render carries the same tree plus wall figures.
	if s := tr.String(); !strings.Contains(s, "wall=") {
		t.Fatalf("String() carries no timings:\n%s", s)
	}
}

// TestObsTraceDeterministic pins the determinism contract: the same
// query on identically seeded databases, run sequentially (pool
// parallelism 1), renders a byte-identical Text() tree — across
// reruns, and from 8 concurrent goroutines each driving its own DB
// (the -race half of the guarantee).
func TestObsTraceDeterministic(t *testing.T) {
	ref := func() string {
		_, pr := obsQ15(t, 2)
		tr, err := pr.Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return tr.Text()
	}()

	for i := 0; i < 2; i++ {
		_, pr := obsQ15(t, 2)
		tr, err := pr.Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Text(); got != ref {
			t.Fatalf("rerun %d trace diverges:\n--- ref\n%s\n--- got\n%s", i, ref, got)
		}
	}

	texts := make([]string, 8)
	errs := make([]error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := tpch.Generate(tpch.Config{SF: 0.002, ProbHigh: 1, Seed: 3})
			db := repro.NewDB(gen.Space, gen.Supplier, gen.Lineitem)
			db.Pool().Resize(1)
			sess := db.Session(repro.WithEps(1e-3), repro.WithForceLineage(), repro.WithShards(2))
			node := &plan.TopK{Input: gen.Q15IR(0, tpch.MaxDate/3), K: 3}
			pr, err := sess.Query(node).Build()
			if err != nil {
				errs[g] = err
				return
			}
			tr, err := pr.Analyze(context.Background())
			if err != nil {
				errs[g] = err
				return
			}
			texts[g] = tr.Text()
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if texts[g] != ref {
			t.Fatalf("goroutine %d trace diverges:\n--- ref\n%s\n--- got\n%s", g, ref, texts[g])
		}
	}
}

// TestObsTraceOnOffIdentical pins the zero-interference contract:
// running with a WithTrace sink changes nothing about the answers —
// values, probabilities, bounds, steps, and arrival order are bitwise
// identical to an untraced run.
func TestObsTraceOnOffIdentical(t *testing.T) {
	type row struct {
		vals  []pdb.Value
		p     float64
		lo    float64
		hi    float64
		steps int
	}
	run := func(traced bool) ([]row, int) {
		gen := tpch.Generate(tpch.Config{SF: 0.002, ProbHigh: 1, Seed: 3})
		db := repro.NewDB(gen.Space, gen.Supplier, gen.Lineitem)
		db.Pool().Resize(1)
		traces := 0
		opts := []repro.SessionOption{repro.WithEps(1e-3), repro.WithForceLineage(), repro.WithShards(2)}
		if traced {
			opts = append(opts, repro.WithTrace(func(tr *repro.QueryTrace) { traces++ }))
		}
		sess := db.Session(opts...)
		node := &plan.TopK{Input: gen.Q15IR(0, tpch.MaxDate/3), K: 3}
		var rows []row
		for a, err := range sess.Query(node).Run(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row{a.Vals, a.P, a.Res.Lo, a.Res.Hi, a.Res.Nodes})
		}
		return rows, traces
	}

	off, traces := run(false)
	if traces != 0 {
		t.Fatalf("untraced run delivered %d traces", traces)
	}
	on, traces := run(true)
	if traces != 1 {
		t.Fatalf("traced run delivered %d traces, want 1", traces)
	}
	if len(on) != len(off) {
		t.Fatalf("traced run: %d answers, untraced %d", len(on), len(off))
	}
	for i := range on {
		a, b := on[i], off[i]
		if len(a.vals) != len(b.vals) || a.vals[0] != b.vals[0] ||
			a.p != b.p || a.lo != b.lo || a.hi != b.hi || a.steps != b.steps {
			t.Fatalf("answer %d diverges under tracing: %+v vs %+v", i, a, b)
		}
	}
}

// TestObsMetricsFacade drives the registry surface: DB.Metrics
// accumulates across queries, Session.Metrics opens a delta window,
// and PublishExpvar exposes the snapshot on the expvar surface.
func TestObsMetricsFacade(t *testing.T) {
	db := smallDB(t)
	ctx := context.Background()

	if _, err := db.Session().Query("R").Join(db.Session().Query("S"), 1, 0).GroupLineage(3).All(ctx); err == nil {
		t.Fatal("cross-session join must fail") // sanity: sessions are distinct
	}

	sess := db.Session(repro.WithForceLineage())
	if _, err := sess.Query("R").Join(sess.Query("S"), 1, 0).GroupLineage(3).All(ctx); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if snap.Queries != 1 {
		t.Fatalf("Queries = %d after one query, want 1", snap.Queries)
	}
	if snap.RouteLineage != 1 {
		t.Fatalf("RouteLineage = %d on a forced-lineage query, want 1", snap.RouteLineage)
	}
	if snap.LineageAnswers == 0 || snap.LineageTuples == 0 {
		t.Fatalf("lineage volumes not recorded: %+v", snap)
	}
	if snap.QueryWallMicros.Count != 1 {
		t.Fatalf("QueryWallMicros.Count = %d, want 1", snap.QueryWallMicros.Count)
	}
	if snap.InternerStored == 0 {
		t.Fatalf("interner traffic not recorded: %+v", snap)
	}

	// A session opened now sees only the traffic it causes.
	sess2 := db.Session()
	if d := sess2.Metrics(); d.Queries != 0 {
		t.Fatalf("fresh session window reports %d queries", d.Queries)
	}
	if _, err := sess2.Query("R").GroupLineage(0).All(ctx); err != nil {
		t.Fatal(err)
	}
	d := sess2.Metrics()
	if d.Queries != 1 {
		t.Fatalf("session window Queries = %d, want 1", d.Queries)
	}
	if got := db.Snapshot().Queries; got != 2 {
		t.Fatalf("DB-wide Queries = %d, want 2", got)
	}

	// Safe-route traffic lands in the route counters too.
	before := db.Snapshot().RouteSafe
	safe := db.Session()
	if _, err := safe.Query("R").Join(safe.Query("S"), 1, 0).GroupLineage(3).All(ctx); err != nil {
		t.Fatal(err)
	}
	if got := db.Snapshot().RouteSafe; got != before+1 {
		t.Fatalf("RouteSafe = %d after a safe-routed query, want %d", got, before+1)
	}

	// Expvar export: published once under a unique name, the var
	// renders the live snapshot as JSON.
	db.PublishExpvar("repro-test-metrics")
	v := expvar.Get("repro-test-metrics")
	if v == nil {
		t.Fatal("PublishExpvar did not publish")
	}
	if s := v.String(); !strings.Contains(s, "\"queries\"") {
		t.Fatalf("expvar snapshot missing queries field: %s", s)
	}
}

// TestObsCacheStatsUnified pins the satellite: every cache of the
// façade reports the one CacheStats shape, and the hit-rate helpers
// behave.
func TestObsCacheStatsUnified(t *testing.T) {
	db := smallDB(t)
	sess := db.Session(repro.WithEps(1e-4), repro.WithForceLineage())
	if _, err := sess.Query("R").Join(sess.Query("S"), 1, 0).GroupLineage(3).All(context.Background()); err != nil {
		t.Fatal(err)
	}
	var stats [2]repro.CacheStats
	stats[0] = sess.Cache().CacheStats()
	stats[1] = sess.FragCache().CacheStats()
	if stats[1].Lookups() == 0 {
		t.Fatal("frag cache saw no lookups on an approximate lineage query")
	}
	for i, s := range stats {
		if s.Hits < 0 || s.Misses < 0 || s.Entries < 0 {
			t.Fatalf("cache %d negative stats: %+v", i, s)
		}
		if r := s.HitRate(); math.IsNaN(r) || r < 0 || r > 1 {
			t.Fatalf("cache %d hit rate %v out of range", i, r)
		}
	}
	if d := stats[1].Sub(repro.CacheStats{}); d != stats[1] {
		t.Fatalf("Sub(zero) changed the stats: %+v vs %+v", d, stats[1])
	}
}

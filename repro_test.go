package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro"
)

// TestFacade exercises the root package's re-exported API end to end.
func TestFacade(t *testing.T) {
	s := repro.NewSpace()
	x := s.AddBool(0.3)
	y := s.AddBool(0.2)
	z := s.AddBool(0.7)
	v := s.AddBool(0.8)

	mk := func(atoms ...repro.Atom) repro.Clause {
		c, ok := repro.NewClause(atoms...)
		if !ok {
			t.Fatal("inconsistent clause in facade test")
		}
		return c
	}
	pos := func(v repro.Var) repro.Atom { return repro.Atom{Var: v, Val: 1} }
	phi := repro.NewDNF(
		mk(pos(x), pos(y)),
		mk(pos(x), pos(z)),
		mk(pos(v)),
	)

	if got := repro.ExactProbability(s, phi); math.Abs(got-0.8456) > 1e-12 {
		t.Fatalf("exact = %v, want 0.8456", got)
	}

	lo, hi := repro.Bounds(s, phi, true)
	if lo > 0.8456 || hi < 0.8456 {
		t.Fatalf("bounds [%v, %v] miss the exact probability", lo, hi)
	}

	res, err := repro.Approx(s, phi, repro.Options{Eps: 0.01, Kind: repro.Absolute})
	if err != nil || !res.Converged {
		t.Fatalf("approx failed: %+v err=%v", res, err)
	}
	if math.Abs(res.Estimate-0.8456) > 0.01+1e-9 {
		t.Fatalf("estimate %v not within 0.01 of 0.8456", res.Estimate)
	}

	rel, err := repro.Approx(s, phi, repro.Options{Eps: 0.05, Kind: repro.Relative})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Estimate < 0.95*0.8456-1e-9 || rel.Estimate > 1.05*0.8456+1e-9 {
		t.Fatalf("relative estimate %v out of range", rel.Estimate)
	}

	mc := repro.AConf(s, phi, repro.AConfOptions{Eps: 0.05, Delta: 0.01},
		rand.New(rand.NewSource(1)))
	if math.Abs(mc.Estimate-0.8456) > 0.05 {
		t.Fatalf("aconf estimate %v too far", mc.Estimate)
	}

	exact, err := repro.Exact(s, phi, repro.Options{})
	if err != nil || !exact.Exact {
		t.Fatalf("Exact: %+v err=%v", exact, err)
	}
}

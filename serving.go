package repro

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pdb"
	"repro/internal/serve"
)

// NewServer wires a query service (internal/serve via the ServeConfig /
// QueryServer re-exports) over a DB: POST /v1/query streams a wire-IR
// query's answers as Server-Sent Events the moment each membership is
// proven, named sessions pin probability and prepared-fragment caches
// across requests, admission control degrades then sheds under
// pressure, and GET /metrics // GET /v1/query/{id}/trace export the
// DB's observability layer. Mount srv.Handler on any net/http server,
// or srv.ListenAndServe(addr); stop with srv.Shutdown.
//
// The wire query IR mirrors the fluent builder one-to-one and is
// compiled through it, so every misuse a Go caller would get as a
// BuildError comes back as a 400 carrying the same message.
func NewServer(db *DB, cfg serve.Config) *serve.Server {
	return serve.New(&serveBackend{db: db, cfg: cfg}, cfg)
}

// serveBackend implements serve.Backend over a DB.
type serveBackend struct {
	db  *DB
	cfg serve.Config
}

func (b *serveBackend) Snapshot() obs.Snapshot { return b.db.Snapshot() }

// OpenSession creates one affinity unit: a private probability cache
// and (unless the server shares one warm-started cache across all
// sessions) a private prepared-fragment cache. The repro.Session
// itself is created per request — sessions are cheap, and the
// per-request one carries that request's effective Eps and budget over
// these pinned caches.
func (b *serveBackend) OpenSession() serve.SessionClient {
	frags := b.cfg.SharedFrags
	if frags == nil {
		frags = NewFragCache(0)
	}
	return &serveClient{
		db: b.db, prob: NewProbCache(0), frags: frags,
		inject:   b.cfg.Inject,
		watchdog: b.cfg.Watchdog,
	}
}

// serveClient is serve.SessionClient over the façade.
type serveClient struct {
	db       *DB
	prob     *ProbCache
	frags    *FragCache
	inject   *fault.Injector
	watchdog time.Duration
}

func (c *serveClient) Run(ctx context.Context, req *serve.Request, p serve.RunParams, sink serve.Sink) (serve.RunOutcome, error) {
	var tr *QueryTrace
	opts := []SessionOption{
		WithSharedCache(c.prob),
		WithSharedFragCache(c.frags),
		WithBudget(p.Budget),
		WithTrace(func(t *QueryTrace) { tr = t }),
	}
	if p.Eps > 0 {
		opts = append(opts, WithEps(p.Eps))
	}
	if c.inject != nil {
		opts = append(opts, WithInjector(c.inject))
	}
	if c.watchdog > 0 {
		opts = append(opts, WithWatchdog(c.watchdog))
	}
	sess := c.db.Session(opts...)

	q, err := compileWire(sess, req.Query)
	if err != nil {
		return serve.RunOutcome{}, &serve.RequestError{Status: 400, Err: err}
	}
	pr, err := q.Build()
	if err != nil {
		return serve.RunOutcome{}, &serve.RequestError{Status: 400, Err: err}
	}

	meta := serve.Meta{
		ID: p.ID, Session: req.Session,
		Explain: pr.Explain(), Schema: q.Schema(),
		Eps: p.Eps, Degraded: p.Degraded,
	}
	if !sink.Meta(meta) {
		if cerr := ctx.Err(); cerr != nil {
			return serve.RunOutcome{}, cerr
		}
		return serve.RunOutcome{}, errors.New("client went away before the stream started")
	}

	// Stream: each proven answer goes to the sink as it is yielded; a
	// refused answer means the client disconnected, and breaking the
	// loop cancels the evaluation. The error, if any, is the stream's
	// final element — partial results stay delivered.
	var runErr error
	answers := 0
	for a, aerr := range pr.Run(ctx) {
		if aerr != nil {
			runErr = aerr
			continue
		}
		answers++
		if !sink.Answer(wireAnswer(a)) {
			break
		}
	}

	sum := serve.Summary{Answers: answers}
	if tr != nil {
		sum.Route = tr.Route
		sum.WallMicros = tr.Wall.Microseconds()
		if tr.Rank != nil {
			sum.Steps = tr.Rank.Steps
		}
	}
	if runErr != nil {
		sum.Error = runErr.Error()
	}
	return serve.RunOutcome{Summary: sum, Trace: tr}, runErr
}

// wireAnswer converts a façade answer to the wire shape.
func wireAnswer(a Answer) serve.Answer {
	vals := make([]int64, len(a.Vals))
	for i, v := range a.Vals {
		vals[i] = int64(v)
	}
	return serve.Answer{
		Vals: vals, P: a.P,
		Lo: a.Res.Lo, Hi: a.Res.Hi,
		Exact: a.Res.Exact, Converged: a.Res.Converged,
		DecidedAtStep: a.DecidedAtStep,
	}
}

// compileWire recursively translates a wire node into a fluent-builder
// chain on sess. Wire-shape violations (no operator, several at once,
// an unknown filter op) are reported as BuildErrors too, so the service
// surfaces one uniform error vocabulary; everything the builder itself
// validates — unknown relations, out-of-range columns, ranking
// placement — is left to Build.
func compileWire(sess *Session, n *serve.Node) (*Query, error) {
	if n == nil {
		return nil, &BuildError{Op: "wire", Reason: "missing query node"}
	}
	set := 0
	for _, on := range []bool{
		n.Scan != "", n.Where != nil, n.Join != nil, n.JoinLess != nil,
		n.Project != nil, n.GroupLineage != nil, n.TopK != nil, n.Threshold != nil,
	} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, &BuildError{Op: "wire", Reason: fmt.Sprintf("a query node must set exactly one operator, got %d", set)}
	}
	sub := func(in *serve.Node) (*Query, error) { return compileWire(sess, in) }
	switch {
	case n.Scan != "":
		return sess.Query(n.Scan), nil
	case n.Where != nil:
		in, err := sub(n.Where.Input)
		if err != nil {
			return nil, err
		}
		pred, err := wherePred(in, n.Where)
		if err != nil {
			return nil, err
		}
		return in.Select(pred), nil
	case n.Join != nil:
		l, err := sub(n.Join.Left)
		if err != nil {
			return nil, err
		}
		r, err := sub(n.Join.Right)
		if err != nil {
			return nil, err
		}
		return l.Join(r, n.Join.LeftCol, n.Join.RightCol), nil
	case n.JoinLess != nil:
		l, err := sub(n.JoinLess.Left)
		if err != nil {
			return nil, err
		}
		r, err := sub(n.JoinLess.Right)
		if err != nil {
			return nil, err
		}
		return l.JoinLess(r, n.JoinLess.LeftCol, n.JoinLess.RightCol), nil
	case n.Project != nil:
		in, err := sub(n.Project.Input)
		if err != nil {
			return nil, err
		}
		return in.Project(n.Project.Cols...), nil
	case n.GroupLineage != nil:
		in, err := sub(n.GroupLineage.Input)
		if err != nil {
			return nil, err
		}
		return in.GroupLineage(n.GroupLineage.Cols...), nil
	case n.TopK != nil:
		in, err := sub(n.TopK.Input)
		if err != nil {
			return nil, err
		}
		return in.TopK(n.TopK.K), nil
	default:
		in, err := sub(n.Threshold.Input)
		if err != nil {
			return nil, err
		}
		return in.Threshold(n.Threshold.Tau), nil
	}
}

// wherePred compiles a wire filter into a tuple predicate. The column
// is validated here against the input schema — the predicate closure
// indexes tuples at evaluation time, far from any validation the
// builder could do on an opaque func.
func wherePred(in *Query, w *serve.Where) (func([]pdb.Value) bool, error) {
	if sch := in.Schema(); sch != nil && (w.Col < 0 || w.Col >= len(sch)) {
		return nil, &BuildError{Op: "wire", Reason: fmt.Sprintf("where column %d out of range [0, %d)", w.Col, len(sch))}
	}
	col, val := w.Col, pdb.Value(w.Value)
	switch w.Op {
	case "eq":
		return func(v []pdb.Value) bool { return v[col] == val }, nil
	case "ne":
		return func(v []pdb.Value) bool { return v[col] != val }, nil
	case "lt":
		return func(v []pdb.Value) bool { return v[col] < val }, nil
	case "le":
		return func(v []pdb.Value) bool { return v[col] <= val }, nil
	case "gt":
		return func(v []pdb.Value) bool { return v[col] > val }, nil
	case "ge":
		return func(v []pdb.Value) bool { return v[col] >= val }, nil
	default:
		return nil, &BuildError{Op: "wire", Reason: fmt.Sprintf("unknown where op %q (want eq, ne, lt, le, gt or ge)", w.Op)}
	}
}

package repro

import (
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/formula"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Session scopes the per-client state of the façade: a subformula
// probability cache shared by every query the session runs, a default
// evaluation budget, and a default evaluator derived from them. A
// Session is cheap (create one per request, or keep one per client for
// cache warmth across queries) and safe for concurrent use — N
// goroutines may run queries on one Session, and N Sessions may share
// one DB; the cache is concurrent and everything else is read-only
// after creation.
type Session struct {
	db           *DB
	cache        *formula.ProbCache
	frags        *formula.FragCache
	budget       engine.Budget
	eps          float64
	kind         engine.ErrorKind
	eval         engine.Evaluator
	forceLineage bool
	shards       int
	trace        func(*obs.QueryTrace)
	view         *obs.View
	inject       *fault.Injector
	watchdog     time.Duration
}

// SessionOption configures a Session at creation.
type SessionOption func(*Session)

// WithBudget sets the session's default evaluation budget
// (nodes / work / samples / wall clock). It bounds the session's
// default evaluator; an evaluator installed with WithEvaluator carries
// its own budget and is used verbatim.
func WithBudget(b Budget) SessionOption {
	return func(s *Session) { s.budget = b }
}

// WithEps sets the session's refinement floor: queries evaluate lineage
// with the ε-approximation (absolute error, Definition 5.7) instead of
// exact d-tree compilation, and ranked queries stop refining each
// answer at the same floor. Use WithEvaluator for relative error or a
// different algorithm.
func WithEps(eps float64) SessionOption {
	return func(s *Session) { s.eps, s.kind = eps, engine.Absolute }
}

// WithEvaluator installs the evaluator queries hand lineage to,
// overriding the Eps/Budget-derived default. The evaluator is used
// verbatim — wire the session's cache in yourself if it should share
// (see Session.Cache). Ranked queries derive their scheduler
// configuration from it, exactly like Plan.Answers.
func WithEvaluator(ev Evaluator) SessionOption {
	return func(s *Session) { s.eval = ev }
}

// WithSharedCache makes the session memoize subformula probabilities in
// the given cache instead of a fresh private one — the cross-session
// sharing knob: sessions over one DB handed the same cache compute each
// recurring lineage fragment once, whoever sees it first.
func WithSharedCache(c *ProbCache) SessionOption {
	return func(s *Session) { s.cache = c }
}

// WithSharedFragCache makes the session memoize *prepared* lineage
// fragments (normalized form, heuristic bounds, component partition) in
// the given cache instead of a fresh private one — the
// prepared-statement analogue of WithSharedCache. Where the probability
// cache pays off once a fragment has been computed exactly, the
// fragment cache short-circuits leaf preparation itself, the dominant
// cost of approximate and ranked evaluation. Share one across sessions
// over the same DB only.
func WithSharedFragCache(c *FragCache) SessionOption {
	return func(s *Session) { s.frags = c }
}

// WithForceLineage disables the planner's structural routes (safe
// plans, IQ sorted scans) for the session's queries, forcing lineage
// materialization plus d-tree evaluation — the ablation/debugging knob,
// and the way to get anytime streaming on a query the planner would
// otherwise answer exactly.
func WithForceLineage() SessionOption {
	return func(s *Session) { s.forceLineage = true }
}

// WithShards overrides the partition count of the lineage pipeline for
// the session's queries: 1 forces the single-chain pipeline, n > 1
// forces exactly n partition-parallel chains on the DB's worker pool.
// Without the option the planner chooses — unsharded below a driver
// cardinality floor, up to the pool's parallelism above it. Sharding
// never changes results: answer values, order, and lineage DNFs are
// identical to the unsharded pipeline's.
func WithShards(n int) SessionOption {
	return func(s *Session) { s.shards = n }
}

// WithTrace installs a per-query trace sink: after each of the
// session's queries finishes (Run fully iterated, All or Analyze
// returned), fn receives that execution's populated EXPLAIN ANALYZE
// trace. Tracing changes no results — answers, their order and
// refinement steps are bitwise identical with and without it. fn is
// called synchronously from the goroutine that ran the query, once per
// execution; with N goroutines querying one session it must be safe
// for concurrent calls.
func WithTrace(fn func(*QueryTrace)) SessionOption {
	return func(s *Session) { s.trace = fn }
}

// WithInjector arms deterministic fault injection for the session's
// queries: inj fires at the named chaos sites (fault.SiteEvalStep and
// friends) throughout evaluation. A nil or unconfigured injector is
// free — the probes are nil-safe single atomic loads — so production
// sessions simply omit the option. Injected failures surface through
// the ordinary error plumbing: a per-answer error on batch paths, a
// terminating error on streams, never a crash.
func WithInjector(inj *fault.Injector) SessionOption {
	return func(s *Session) { s.inject = inj }
}

// WithWatchdog arms the stuck-query watchdog on the session's ranked
// queries: when no refinement grant tightens any answer's bounds for
// longer than d, the run stops with fault.ErrStuck (and the registry's
// watchdog_trips counter increments) instead of spinning forever. Zero
// disables the watchdog; a healthy run under a generous deadline is
// scheduled identically to an unwatched one.
func WithWatchdog(d time.Duration) SessionOption {
	return func(s *Session) { s.watchdog = d }
}

// Session opens a session on the DB. With no options: a fresh private
// probability cache, no budget, exact evaluation.
func (db *DB) Session(opts ...SessionOption) *Session {
	s := &Session{db: db, view: db.metrics.View()}
	for _, o := range opts {
		o(s)
	}
	if s.cache == nil {
		s.cache = formula.NewProbCache(0)
	}
	if s.frags == nil {
		s.frags = formula.NewFragCache(0)
	}
	return s
}

// DB returns the database the session runs against.
func (s *Session) DB() *DB { return s.db }

// Cache returns the session's subformula probability cache (the private
// one, or the cache installed by WithSharedCache).
func (s *Session) Cache() *ProbCache { return s.cache }

// FragCache returns the session's prepared-fragment cache (the private
// one, or the cache installed by WithSharedFragCache).
func (s *Session) FragCache() *FragCache { return s.frags }

// Metrics returns the traffic the DB's registry has recorded since
// this session was created — a delta window over the shared per-DB
// registry, not a private ledger: with concurrent sessions on one DB
// the window includes the others' traffic too.
func (s *Session) Metrics() obs.Snapshot { return s.view.Snapshot() }

// Evaluator returns the evaluator the session's queries hand lineage
// to: the one installed by WithEvaluator, else the ε-approximation at
// the WithEps floor, else exact d-tree compilation — the derived
// evaluators carrying the session's budget, cache and the DB's
// metrics registry.
func (s *Session) Evaluator() Evaluator {
	if s.eval != nil {
		return s.eval
	}
	if s.eps > 0 {
		return engine.Approx{Eps: s.eps, Kind: s.kind, Budget: s.budget, Cache: s.cache, Frags: s.frags, Pool: s.db.pool, Metrics: s.db.metrics, Inject: s.inject}
	}
	return engine.Exact{Budget: s.budget, Cache: s.cache, Pool: s.db.pool, Metrics: s.db.metrics, Inject: s.inject}
}

// planOptions translates the session knobs into planner options; every
// plan runs its parallel work on the DB's private pool.
func (s *Session) planOptions() plan.Options {
	return plan.Options{
		DisableSafe: s.forceLineage,
		DisableIQ:   s.forceLineage,
		Shards:      s.shards,
		Pool:        s.db.pool,
		Metrics:     s.db.metrics,
		Inject:      s.inject,
		Watchdog:    s.watchdog,
	}
}

package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro"
)

// TestSessionsShareFragCache runs the same ranked query from eight
// concurrent sessions handed one prepared-fragment cache (run under
// -race in CI). Every session must produce exactly the baseline
// answers — fragment-cache entries are canonical and immutable, so
// racing sessions may only ever observe each other's finished
// preparations — and the shared cache must record cross-session hits.
func TestSessionsShareFragCache(t *testing.T) {
	s, rel := facadeWorkload(60)
	db := repro.NewDB(s, rel)
	ctx := context.Background()

	baselineSess := db.Session(repro.WithEps(1e-6), repro.WithForceLineage())
	baseline, err := baselineSess.Query("answers").GroupLineage(0).TopK(7).All(ctx)
	if err != nil {
		t.Fatal(err)
	}

	shared := repro.NewFragCache(0)
	const sessions = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	results := make([][]repro.Answer, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.Session(repro.WithEps(1e-6), repro.WithForceLineage(),
				repro.WithSharedFragCache(shared))
			results[i], errs[i] = sess.Query("answers").GroupLineage(0).TopK(7).All(ctx)
		}()
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if len(results[i]) != len(baseline) {
			t.Fatalf("session %d: %d answers, baseline %d", i, len(results[i]), len(baseline))
		}
		for j, a := range results[i] {
			b := baseline[j]
			if a.Vals[0] != b.Vals[0] || a.P != b.P || a.Res.Lo != b.Res.Lo || a.Res.Hi != b.Res.Hi {
				t.Fatalf("session %d answer %d: got %v (P=%v [%v,%v]), baseline %v (P=%v [%v,%v])",
					i, j, a.Vals, a.P, a.Res.Lo, a.Res.Hi, b.Vals, b.P, b.Res.Lo, b.Res.Hi)
			}
		}
	}
	if hits, misses := shared.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("degenerate sharing: hits=%d misses=%d", hits, misses)
	} else {
		t.Logf("shared fragment cache: %d hits, %d misses, %d entries", hits, misses, shared.Len())
	}
}

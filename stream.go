package repro

import (
	"iter"

	"repro/internal/pdb"
)

// Answer is one streamed query answer: the tuple values, the confidence
// estimate P, and the full evaluation outcome (bounds, node and cache
// counters) in Res. On anytime streams the bounds are the interval at
// the moment membership was proven; Res.Converged reports whether P
// already carries the session's ε guarantee.
type Answer = pdb.AnswerConf

// Collect drains an answer stream into a slice. It stops at the
// stream's first error and returns the answers yielded before it — for
// anytime streams the proven prefix — alongside that error.
func Collect(seq iter.Seq2[Answer, error]) ([]Answer, error) {
	var out []Answer
	for a, err := range seq {
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}

// First returns the stream's first answer — on an anytime stream, the
// first answer whose membership was proven, available before the query
// finishes — and cancels the rest of the run. ok is false on an empty
// stream.
func First(seq iter.Seq2[Answer, error]) (a Answer, ok bool, err error) {
	for ans, e := range seq {
		if e != nil {
			return Answer{}, false, e
		}
		return ans, true, nil
	}
	return Answer{}, false, nil
}
